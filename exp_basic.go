package tahoe

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/workloads"
)

func init() {
	registerExperiment(Experiment{"T1", "NVM device characteristics used by every experiment", expT1})
	registerExperiment(Experiment{"T2", "Calibrated model constant factors per machine", expT2})
	registerExperiment(Experiment{"E1", "NVM-only slowdown vs memory bandwidth (normalized to DRAM-only)", expE1})
	registerExperiment(Experiment{"E2", "NVM-only slowdown vs memory latency (normalized to DRAM-only)", expE2})
	registerExperiment(Experiment{"E3", "Per-object placement sensitivity (one object group in DRAM at a time)", expE3})
}

// expT1 prints the device table (the analog of the paper's Table 1).
func expT1(opt ExpOptions) (*Table, error) {
	t := report.New("T1", "NVM device characteristics",
		"Device", "Read lat (ns)", "Write lat (ns)", "Read BW (MB/s)", "Write BW (MB/s)")
	for _, d := range []mem.DeviceSpec{mem.DRAM(), mem.STTRAM(), mem.PCRAM(), mem.ReRAM(), mem.OptanePM()} {
		t.AddRow(d.Name,
			fmt.Sprintf("%.0f", d.ReadLatNS), fmt.Sprintf("%.0f", d.WriteLatNS),
			fmt.Sprintf("%.0f", d.ReadBW/1e6), fmt.Sprintf("%.0f", d.WriteBW/1e6))
	}
	t.Note("emulated configurations scale DRAM bandwidth (1/2, 1/4, 1/8) or latency (2x, 4x, 8x)")
	return t, nil
}

// expT2 prints the calibration constants (STREAM and pointer-chase runs).
func expT2(opt ExpOptions) (*Table, error) {
	t := report.New("T2", "Calibrated constant factors",
		"Machine", "CF_bw", "CF_lat", "Peak BW (GB/s)")
	for _, h := range []mem.HMS{hmsBW(0.5), hmsLat(4), hmsOptane()} {
		f := factorsFor(h)
		t.AddRow("DRAM+"+h.NVM.Name, report.F(f.CFBw), report.F(f.CFLat),
			fmt.Sprintf("%.2f", f.PeakBW/1e9))
	}
	t.Note("factors absorb the sampling undercount (bias %.2f); computed once per machine",
		0.92)
	return t, nil
}

// expE1 reproduces the bandwidth-throttling study: NVM-only performance
// at 1/2, 1/4, 1/8 DRAM bandwidth, one worker per memory system (the
// paper's one-rank-per-node preliminary setup), normalized to DRAM-only.
func expE1(opt ExpOptions) (*Table, error) {
	t := report.New("E1", "NVM-only slowdown vs bandwidth (workers=1)",
		"Workload", "DRAM", "1/2 BW", "1/4 BW", "1/8 BW")
	fracs := []float64{0.5, 0.25, 0.125}
	apps := expApps(opt)
	rows, err := runCells(opt, len(apps), func(i int) ([][]string, error) {
		s := apps[i]
		g := buildApp(s, opt)
		cfg := expConfig(hmsBW(0.5), core.DRAMOnly)
		cfg.Workers = 1
		base := mustRun(g, cfg).Time
		row := []string{s.Name, "1.00"}
		for _, f := range fracs {
			cfg := expConfig(hmsBW(f), core.NVMOnly)
			cfg.Workers = 1
			row = append(row, report.Norm(mustRun(g, cfg).Time, base))
		}
		return oneRow(row...), nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.Note("expected shape: slowdown grows with throttling; streaming workloads suffer most")
	return t, nil
}

// expE2 reproduces the latency-scaling study: 2x, 4x, 8x DRAM latency.
func expE2(opt ExpOptions) (*Table, error) {
	t := report.New("E2", "NVM-only slowdown vs latency (workers=1)",
		"Workload", "DRAM", "2x LAT", "4x LAT", "8x LAT")
	mults := []float64{2, 4, 8}
	apps := expApps(opt)
	if !opt.Quick {
		// The latency experiment includes the pointer chase: the purely
		// latency-bound extreme.
		if s, err := workloads.ByName("pchase"); err == nil {
			apps = append(apps, s)
		}
	}
	rows, err := runCells(opt, len(apps), func(i int) ([][]string, error) {
		s := apps[i]
		g := buildApp(s, opt)
		cfg := expConfig(hmsLat(2), core.DRAMOnly)
		cfg.Workers = 1
		base := mustRun(g, cfg).Time
		row := []string{s.Name, "1.00"}
		for _, m := range mults {
			cfg := expConfig(hmsLat(m), core.NVMOnly)
			cfg.Workers = 1
			row = append(row, report.Norm(mustRun(g, cfg).Time, base))
		}
		return oneRow(row...), nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.Note("expected shape: dependent-access workloads (pchase, gathers) scale with latency; streams do not")
	return t, nil
}

// expE3 reproduces the per-object sensitivity study: place one object
// group in DRAM at a time (everything else in NVM) and compare against
// the DRAM-only and NVM-only bounds, under a bandwidth-limited and a
// latency-limited NVM. Object groups are name prefixes ("A", "p", "U0").
func expE3(opt ExpOptions) (*Table, error) {
	t := report.New("E3", "Per-object placement sensitivity (workers=1)",
		"Workload", "Group", "1/2 BW", "4x LAT")
	names := []string{"cg", "heat"}
	if opt.Quick {
		names = names[:1]
	}
	rows, err := runCells(opt, len(names), func(i int) ([][]string, error) {
		name := names[i]
		s, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		g := buildApp(s, opt)
		groups := objectGroups(g)

		type machine struct {
			h mem.HMS
		}
		machines := []machine{{hmsBW(0.5)}, {hmsLat(4)}}
		base := make([]float64, len(machines))
		nvm := make([]float64, len(machines))
		for i, m := range machines {
			cfg := expConfig(m.h, core.DRAMOnly)
			cfg.Workers = 1
			base[i] = mustRun(g, cfg).Time
			cfg = expConfig(m.h, core.NVMOnly)
			cfg.Workers = 1
			nvm[i] = mustRun(g, cfg).Time
		}
		var rows [][]string
		rows = append(rows, []string{name, "(all in NVM)",
			report.Norm(nvm[0], base[0]), report.Norm(nvm[1], base[1])})
		for _, grp := range groups {
			grp := grp
			row := []string{name, grp + " in DRAM"}
			for i, m := range machines {
				cfg := expConfig(m.h, core.Pinned)
				cfg.Workers = 1
				// Give the pinned group room regardless of the group size;
				// the experiment isolates sensitivity, not capacity.
				cfg.HMS.DRAMCapacity = 1 << 40
				cfg.Pin = func(objName string) bool {
					return groupOf(objName) == grp
				}
				row = append(row, report.Norm(mustRun(g, cfg).Time, base[i]))
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.Note("a group that helps under 1/2 BW but not 4x LAT is bandwidth-sensitive, and vice versa")
	return t, nil
}

// groupOf strips the index suffix from an object name: "A[3]" -> "A".
func groupOf(name string) string {
	if i := strings.IndexByte(name, '['); i >= 0 {
		return name[:i]
	}
	return name
}

// objectGroups lists a graph's object-name groups in declaration order.
func objectGroups(g *Graph) []string {
	var out []string
	seen := map[string]bool{}
	for _, o := range g.Objects {
		grp := groupOf(o.Name)
		if !seen[grp] {
			seen[grp] = true
			out = append(out, grp)
		}
	}
	return out
}
