package tahoe

import (
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/report"
)

func init() {
	registerExperiment(Experiment{"E17", "Counterfactual replay: recorded Tahoe schedules under other machines and policies", expE17})
}

// expE17 is the record-then-counterfactual study the replay subsystem
// exists for: each workload is recorded once under Tahoe on the baseline
// machine, then the identical dispatch schedule is replayed under the
// baseline policies and under bandwidth- and latency-degraded NVM. With
// the scheduler pinned, every delta in the table is attributable to
// placement and machine alone — scheduling noise is ruled out by
// construction. The "same" column doubles as a fidelity check: it
// replays under the recording's own machine and policy and must be
// exactly 1.00.
func expE17(opt ExpOptions) (*Table, error) {
	t := report.New("E17", "Replayed Tahoe schedule (normalized to the recorded run)",
		"Workload", "same", "DRAM-only", "NVM-only", "X-Mem", "BW 0.25x", "Lat 4x", "recorded (s)")
	base := hmsBW(0.5)
	apps := expApps(opt)
	rows, err := runCells(opt, len(apps), func(i int) ([][]string, error) {
		s := apps[i]
		g := buildApp(s, opt)
		orig, rec, err := replay.Record(g, expConfig(base, core.Tahoe))
		if err != nil {
			return nil, err
		}
		rerun := func(cfg core.Config) (float64, error) {
			res, err := replay.Replay(g, cfg, rec)
			if err != nil {
				return 0, err
			}
			return res.Time, nil
		}
		row := []string{s.Name}
		for _, cfg := range []core.Config{
			expConfig(base, core.Tahoe),
			expConfig(base, core.DRAMOnly),
			expConfig(base, core.NVMOnly),
			expConfig(base, core.XMem),
			expConfig(hmsBW(0.25), core.Tahoe),
			expConfig(hmsLat(4), core.Tahoe),
		} {
			tm, err := rerun(cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Norm(tm, orig.Time))
		}
		row = append(row, report.Sec(orig.Time))
		return oneRow(row...), nil
	})
	if err != nil {
		return nil, err
	}
	addRows(t, rows)
	t.Note("schedule pinned to the recorded pop order; the \"same\" column replays the recording's " +
		"own machine and policy and is bit-identical to the recorded run (1.00 by construction); " +
		"remaining deltas are placement/machine effects with scheduling held fixed")
	return t, nil
}
