package tahoe

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	h := NewHMS(DRAM(), NVMBandwidth(0.5), 128*MB)
	f, err := Calibrate(h, DefaultProfiler())
	if err != nil {
		t.Fatal(err)
	}
	if f.CFBw <= 0 || f.CFLat <= 0 {
		t.Fatalf("bad factors: %+v", f)
	}
	w, err := BuildWorkload("cg", WorkloadParams{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(h)
	cfg.CFBw, cfg.CFLat = f.CFBw, f.CFLat
	res, err := Run(w.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Tasks != len(w.Graph.Tasks) {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPICustomGraph(t *testing.T) {
	b := NewGraphBuilder("api")
	x := b.Object("x", 64*MB)
	y := b.Object("y", 64*MB)
	n := int64(64 * MB / 64)
	ran := 0
	for i := 0; i < 20; i++ {
		b.Submit("rw", 1e-4, []Access{
			{Obj: x, Mode: In, Loads: n, MLP: 8},
			{Obj: y, Mode: InOut, Loads: n / 4, Stores: n / 4, MLP: 4},
		}, func() { ran++ })
	}
	g := b.Build()

	// Real parallel execution.
	if err := Execute(g, 4); err != nil {
		t.Fatal(err)
	}
	if ran != 20 {
		t.Fatalf("ran %d of 20", ran)
	}

	// Simulated execution under the runtime.
	h := NewHMS(DRAM(), PCRAM(), 64*MB)
	cfg := DefaultConfig(h)
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 20 {
		t.Fatalf("simulated %d tasks", res.Tasks)
	}
}

func TestBuildWorkloadUnknown(t *testing.T) {
	if _, err := BuildWorkload("no-such-thing", WorkloadParams{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 24 {
		t.Fatalf("%d experiments registered, want 24", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"T1", "T2", "E1", "E4", "E7", "E12", "E18", "E19", "E22"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, err := ExperimentByID("E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentTablesWellFormed(t *testing.T) {
	// Quick instances of a representative subset; every row must have the
	// declared number of columns and non-empty first cell.
	for _, id := range []string{"T1", "T2", "E7", "E12", "E13", "E15", "E16"} {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(ExpOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tb.Columns))
			}
			if row[0] == "" {
				t.Fatalf("%s: empty row label", id)
			}
		}
		var sb strings.Builder
		if err := tb.Render(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), tb.ID) {
			t.Fatalf("%s: render lost the ID", id)
		}
	}
}

func TestExperimentDeterminism(t *testing.T) {
	run := func() string {
		e, _ := ExperimentByID("E7")
		tb, err := e.Run(ExpOptions{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tb.CSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if run() != run() {
		t.Fatal("experiment output not deterministic")
	}
}

// TestExperimentParallelByteIdentical pins the parallel-harness
// contract: the serial path and an oversubscribed worker pool render
// byte-identical tables, because cells are independent deterministic
// simulations and rows are assembled in declaration order.
func TestExperimentParallelByteIdentical(t *testing.T) {
	render := func(id string, workers int) string {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(ExpOptions{Quick: true, ParallelCells: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tb.CSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	for _, id := range []string{"E1", "E3", "E4", "E12", "E15", "E17"} {
		serial := render(id, 1)
		parallel := render(id, 8)
		if serial != parallel {
			t.Fatalf("%s: parallel table differs from serial\nserial:\n%s\nparallel:\n%s", id, serial, parallel)
		}
	}
}

// TestExperimentShapes asserts the qualitative results the reproduction
// claims (the EXPERIMENTS.md contract), on quick instances.
func TestExperimentShapes(t *testing.T) {
	// E1: slowdown grows monotonically with bandwidth throttling for the
	// bandwidth-bound workloads.
	e, _ := ExperimentByID("E1")
	tb, err := e.Run(ExpOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		var prev float64 = 0.99
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < prev-0.02 {
				t.Fatalf("E1 %s: non-monotonic slowdown %v", row[0], row)
			}
			prev = v
		}
	}

	// E22: graceful degradation keeps its order at every swept
	// node-failure rate — Tahoe ≤ FirstTouch < NVM-only normalized
	// makespan, failures included.
	e, _ = ExperimentByID("E22")
	tb, err = e.Run(ExpOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		cell := func(i int) float64 {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				t.Fatalf("E22: bad cell %q", row[i])
			}
			return v
		}
		ta, ft, nv := cell(2), cell(3), cell(4)
		if !(ta <= ft && ft < nv) {
			t.Fatalf("E22 rate %s: ordering violated: Tahoe %.3f, FirstTouch %.3f, NVM-only %.3f",
				row[0], ta, ft, nv)
		}
	}
}

// TestFFTOptaneManaged covers the fft workload on the Optane machine in
// both read/write-modeling modes (it began life as a debug print loop):
// the managed run must plan, migrate, clearly beat NVM-only, and be
// deterministic run to run.
func TestFFTOptaneManaged(t *testing.T) {
	h := hmsOptane()
	w, err := BuildWorkload("fft", WorkloadParams{})
	if err != nil {
		t.Fatal(err)
	}
	nvm, err := core.Run(w.Graph, expConfig(h, core.NVMOnly))
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range []bool{true, false} {
		cfg := expConfig(h, core.Tahoe)
		cfg.Tech.DistinguishRW = rw
		res, err := core.Run(w.Graph, cfg)
		if err != nil {
			t.Fatalf("rw=%v: %v", rw, err)
		}
		if res.Tasks != len(w.Graph.Tasks) {
			t.Fatalf("rw=%v: completed %d of %d tasks", rw, res.Tasks, len(w.Graph.Tasks))
		}
		if res.PlanKind == "" {
			t.Fatalf("rw=%v: no plan", rw)
		}
		if res.Migration.Migrations == 0 || res.Migration.BytesMoved == 0 {
			t.Fatalf("rw=%v: no migrations (%+v)", rw, res.Migration)
		}
		if res.Time >= nvm.Time*0.5 {
			t.Fatalf("rw=%v: managed %g vs NVM-only %g, want < half", rw, res.Time, nvm.Time)
		}
		again, err := core.Run(w.Graph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(again.Time) != math.Float64bits(res.Time) ||
			again.Migration != res.Migration || again.PlanKind != res.PlanKind {
			t.Fatalf("rw=%v: run not deterministic: %+v vs %+v", rw, res, again)
		}
	}
}
